"""pHost (Gao et al., CoNEXT 2015) — the closest prior scheme to Homa.

Receiver-driven packet scheduling like Homa, but (per the paper's
characterization in sections 2.2 and 7):

* only two statically assigned priority levels: RTS/tokens/unscheduled
  data at high priority, all scheduled data at one low priority;
* no overcommitment: the receiver paces tokens to a *single* sender at
  a time (the shortest remaining flow), so an unresponsive sender
  wastes downlink bandwidth until a timeout fires;
* senders spend tokens SRPT-first, and tokens expire if unused.

The wasted-bandwidth behaviour (pHost sustains only 58-73% load,
Figure 15) emerges from the single-active-sender pacing plus token
expiry, exactly as the paper describes.

Loss recovery (docs/FABRICS.md, active only with a RecoveryConfig):
the token protocol has two wedge points under packet loss — the
receiver stops granting once ``tokens_issued`` reaches the message
length even when the data never arrived, and the sender discards all
state the moment the last byte hits the wire, so nothing can answer a
late repair request.  With recovery enabled the receiver sends
*gap tokens* (TOKEN packets carrying an explicit ``offset``/
``range_end``) for tokenized-but-missing bytes, the sender keeps
fully-sent messages *lingering* until a completion ACK arrives, and a
silent peer is re-RTSed with backoff until the give-up budget retires
the message on both sides.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import Simulator
from repro.core.packet import (
    CTRL_PRIO,
    FULL_WIRE,
    MAX_PAYLOAD,
    Packet,
    PacketType,
)
from repro.core.units import ps_per_byte
from repro.transport.base import RecoveryConfig, Transport
from repro.transport.messages import InboundMessage, OutboundMessage

#: scheduled data priority (unscheduled + control use CTRL_PRIO)
SCHED_PRIO = 0


class _TokenBucket:
    """Sender-side token budget for one message, with expiry."""

    __slots__ = ("deadlines",)

    def __init__(self) -> None:
        self.deadlines: list[int] = []

    def add(self, expiry_ps: int) -> None:
        self.deadlines.append(expiry_ps)

    def usable(self, now_ps: int) -> int:
        self.deadlines = [d for d in self.deadlines if d >= now_ps]
        return len(self.deadlines)

    def spend(self) -> None:
        self.deadlines.pop(0)


class PHostTransport(Transport):
    """pHost sender+receiver."""

    protocol_name = "phost"

    def __init__(
        self,
        sim: Simulator,
        *,
        rtt_bytes: int,
        host_gbps: int = 10,
        token_ttl_ps: int | None = None,
        unresponsive_timeout_ps: int | None = None,
        blacklist_ps: int | None = None,
        rtt_ps: int = 7_744_000,
        recovery: RecoveryConfig | None = None,
    ) -> None:
        super().__init__(sim, recovery)
        self.rtt_bytes = rtt_bytes
        self.unsched_limit = -(-rtt_bytes // MAX_PAYLOAD) * MAX_PAYLOAD
        #: pacing interval: one token per full-packet time on the downlink
        self.token_interval_ps = FULL_WIRE * ps_per_byte(host_gbps)
        # pHost defaults expressed in our units: tokens live ~1.5 packet
        # times beyond the round trip; a sender idle for a few packet
        # times while holding tokens gets set aside for a while.
        self.token_ttl_ps = token_ttl_ps or (rtt_ps + 3 * self.token_interval_ps)
        self.unresponsive_timeout_ps = (unresponsive_timeout_ps
                                        or 3 * self.token_interval_ps + rtt_ps)
        self.blacklist_ps = blacklist_ps or 3 * rtt_ps
        # Sender state.
        self.outbound: dict[int, OutboundMessage] = {}
        self.tokens: dict[int, _TokenBucket] = {}
        # Receiver state.
        self.inbound: dict[int, InboundMessage] = {}
        self.tokens_issued: dict[int, int] = {}      # key -> bytes tokenized
        self.last_data_ps: dict[int, int] = {}       # key -> last data time
        self.token_grant_ps: dict[int, int] = {}     # key -> last token time
        self.blacklisted_until: dict[int, int] = {}  # key -> time
        self._pacer_event = None
        self.tokens_sent = 0
        self.tokens_expired = 0
        self.resends_sent = 0  # re-RTS + gap tokens (recovery only)
        # Loss recovery (None/empty on clean fabrics): fully-sent
        # messages linger until the receiver's completion ACK.
        self._lingering: dict[int, OutboundMessage] = {}
        self._out_watch = self._tracker(self._out_expire, self._out_give_up)
        self._in_watch = self._tracker(self._in_expire, self._in_give_up)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send_message(self, dst: int, length: int, **kwargs) -> OutboundMessage:
        msg = OutboundMessage(self.sim.new_id(), True, self.hid, dst, length,
                              unsched_limit=self.unsched_limit,
                              created_ps=self.sim.now)
        self.outbound[msg.key] = msg
        if self._out_watch is not None:
            self._out_watch.watch(msg.key)
        # RTS announces the message so the receiver can schedule tokens.
        self.send_ctrl(Packet(
            self.hid, dst, PacketType.RTS, prio=CTRL_PRIO,
            rpc_id=msg.rpc_id, is_request=True, total_length=length,
            created_ps=msg.created_ps))
        self.kick()
        return msg

    def _next_data(self) -> Optional[Packet]:
        now = self.sim.now
        best: Optional[OutboundMessage] = None
        best_key = None
        best_tokens: Optional[_TokenBucket] = None
        for msg in self.outbound.values():
            bucket = self.tokens.get(msg.key)
            has_token = bucket is not None and bucket.usable(now) > 0
            blind = msg.sent < min(msg.unsched_limit, msg.length)
            if not blind and not has_token:
                continue
            key = (msg.remaining, msg.created_ps)
            if best_key is None or key < best_key:
                best, best_key = msg, key
                best_tokens = bucket if (has_token and not blind) else None
        if best is None:
            return None
        if best_tokens is not None:
            best_tokens.spend()
            best.granted = max(best.granted,
                               min(best.length, best.sent + MAX_PAYLOAD))
        chunk = best.next_chunk()
        if chunk is None:  # token arrived for already-sent bytes
            return self._next_data_retry(best)
        offset, size, is_rtx = chunk
        if is_rtx:
            self.rtx_data_sent += 1
        prio = CTRL_PRIO if offset < best.unsched_limit else SCHED_PRIO
        pkt = Packet(self.hid, best.dst, PacketType.DATA, prio=prio,
                     payload=size, rpc_id=best.rpc_id, is_request=True,
                     offset=offset, total_length=best.length, retx=is_rtx,
                     sched=offset >= best.unsched_limit,
                     grant_offset=min(best.length, best.unsched_limit),
                     created_ps=best.created_ps)
        if best.fully_sent():
            self._retire_sender_state(best)
        return pkt

    def _next_data_retry(self, skip: OutboundMessage) -> Optional[Packet]:
        if skip.fully_sent():
            self._retire_sender_state(skip)
        return None

    def _retire_sender_state(self, msg: OutboundMessage) -> None:
        """Every byte is on the wire: drop active sender state.  Under
        recovery the message lingers (still watched) until the
        completion ACK — a lost tail or repair request can still need
        it."""
        self.outbound.pop(msg.key, None)
        self.tokens.pop(msg.key, None)
        if self._out_watch is not None:
            self._lingering[msg.key] = msg

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == PacketType.DATA:
            self._on_data(pkt)
        elif pkt.kind == PacketType.RTS:
            self._on_rts(pkt)
        elif pkt.kind == PacketType.TOKEN:
            self._on_token(pkt)
        elif pkt.kind == PacketType.ACK:
            self._on_done_ack(pkt)

    def _register_inbound(self, pkt: Packet) -> InboundMessage:
        key = pkt.msg_key
        msg = self.inbound.get(key)
        if msg is None:
            msg = InboundMessage(pkt.rpc_id, True, pkt.src, self.hid,
                                 pkt.total_length, now_ps=self.sim.now)
            msg.created_ps = pkt.created_ps
            self.inbound[key] = msg
            self.tokens_issued[key] = min(pkt.total_length, self.unsched_limit)
            self.last_data_ps[key] = self.sim.now
            if self._in_watch is not None:
                self._in_watch.watch(key)
        return msg

    def _on_rts(self, pkt: Packet) -> None:
        if (self._in_watch is not None and pkt.msg_key not in self.inbound
                and self._recently_done(pkt.msg_key)):
            # The completion ACK was lost and the sender re-announced.
            self._note_done(pkt.msg_key)  # refresh: peer still retrying
            self._send_done_ack(pkt.src, pkt.rpc_id, pkt.total_length)
            return
        self._register_inbound(pkt)
        self._ensure_pacer()

    def _on_data(self, pkt: Packet) -> None:
        if (self._in_watch is not None and pkt.msg_key not in self.inbound
                and self._recently_done(pkt.msg_key)):
            self._note_done(pkt.msg_key)  # refresh: peer still retrying
            self._send_done_ack(pkt.src, pkt.rpc_id, pkt.total_length)
            return
        msg = self._register_inbound(pkt)
        self.last_data_ps[msg.key] = self.sim.now
        self.blacklisted_until.pop(msg.key, None)
        added = msg.record(pkt.offset, pkt.payload, self.sim.now)
        if pkt.retx and added:
            self.rtx_recovered += 1
        if self._in_watch is not None:
            self._in_watch.touch(msg.key)
        if msg.is_complete():
            key = msg.key
            del self.inbound[key]
            self.tokens_issued.pop(key, None)
            self.last_data_ps.pop(key, None)
            self.token_grant_ps.pop(key, None)
            if self._in_watch is not None:
                self._in_watch.forget(key)
                self._note_done(key)
                self._send_done_ack(msg.src, msg.rpc_id, msg.length)
            self._report_complete(msg)
        self._ensure_pacer()

    def _send_done_ack(self, dst: int, rpc_id: int, length: int) -> None:
        """Completion ACK (recovery only): releases the sender's
        lingering copy."""
        self.send_ctrl(Packet(
            self.hid, dst, PacketType.ACK, prio=CTRL_PRIO,
            rpc_id=rpc_id, is_request=True, offset=length))

    def _on_done_ack(self, pkt: Packet) -> None:
        key = pkt.msg_key
        self.outbound.pop(key, None)
        self._lingering.pop(key, None)
        self.tokens.pop(key, None)
        if self._out_watch is not None:
            self._out_watch.forget(key)

    def _on_token(self, pkt: Packet) -> None:
        key = pkt.msg_key
        if pkt.range_end > 0:
            # Gap token (recovery): the receiver names the exact missing
            # range; re-queue it even if the message already lingers.
            msg = self.outbound.get(key)
            if msg is None:
                msg = self._lingering.pop(key, None)
                if msg is not None:
                    self.outbound[key] = msg
            if msg is None:
                return  # both sides already gave up
            msg.queue_rtx(pkt.offset, pkt.range_end)
        bucket = self.tokens.get(key)
        if bucket is None:
            bucket = _TokenBucket()
            self.tokens[key] = bucket
        bucket.add(self.sim.now + self.token_ttl_ps)
        if self._out_watch is not None:
            self._out_watch.touch(key)
        self.kick()

    # ------------------------------------------------------------------
    # receiver token pacing (one token per packet time, single flow)
    # ------------------------------------------------------------------

    def _ensure_pacer(self) -> None:
        if self._pacer_event is not None and Simulator.is_pending(self._pacer_event):
            return
        if self._pick_flow() is not None:
            self._pacer_event = self.sim.schedule(
                self.token_interval_ps, self._pace_token)
            return
        # All flows needing tokens may be blacklisted: wake at expiry.
        now = self.sim.now
        expiries = [
            until for key, until in self.blacklisted_until.items()
            if until > now and key in self.inbound
            and self.tokens_issued.get(key, 0) < self.inbound[key].length
        ]
        if expiries:
            delay = max(self.token_interval_ps, min(expiries) - now)
            self._pacer_event = self.sim.schedule(delay, self._pace_token)

    def _pick_flow(self) -> Optional[InboundMessage]:
        """Shortest remaining flow that still needs tokens and is not
        blacklisted for unresponsiveness."""
        now = self.sim.now
        best = None
        best_key = None
        for msg in self.inbound.values():
            key = msg.key
            if self.tokens_issued.get(key, 0) >= msg.length:
                continue
            until = self.blacklisted_until.get(key)
            if until is not None and now < until:
                continue
            rank = (msg.bytes_remaining, msg.first_arrival_ps)
            if best_key is None or rank < best_key:
                best, best_key = msg, rank
        return best

    def _pace_token(self) -> None:
        self._pacer_event = None
        now = self.sim.now
        # Unresponsiveness check: tokens issued but no data arriving.
        for msg in self.inbound.values():
            key = msg.key
            issued = self.tokens_issued.get(key, 0)
            granted_ahead = issued - msg.bytes_received
            if (granted_ahead > 0
                    and now - self.last_data_ps.get(key, now)
                    > self.unresponsive_timeout_ps
                    and key not in self.blacklisted_until):
                self.blacklisted_until[key] = now + self.blacklist_ps
                self.tokens_expired += 1
        flow = self._pick_flow()
        if flow is None:
            self._ensure_pacer()
            return
        key = flow.key
        self.tokens_issued[key] = min(
            flow.length, self.tokens_issued.get(key, 0) + MAX_PAYLOAD)
        self.token_grant_ps[key] = now
        self.tokens_sent += 1
        self.send_ctrl(Packet(
            self.hid, flow.src, PacketType.TOKEN, prio=CTRL_PRIO,
            rpc_id=flow.rpc_id, is_request=True))
        self._ensure_pacer()

    # ------------------------------------------------------------------
    # loss recovery (hooks only fire when a RecoveryConfig is present)
    # ------------------------------------------------------------------

    def _out_expire(self, key: int, tries: int) -> None:
        """Token/ACK silence on the sender: re-announce with an RTS.  An
        RTS is idempotent and answers every silent failure mode — a lost
        RTS (the receiver never learned of the message), lost tokens, a
        lost data tail (the receiver's gap machinery takes over), or a
        lost completion ACK (the receiver re-acks from done-memory)."""
        msg = self.outbound.get(key)
        if msg is None:
            msg = self._lingering.get(key)
        if msg is None:
            self._out_watch.forget(key)
            return
        self.resends_sent += 1
        self.send_ctrl(Packet(
            self.hid, msg.dst, PacketType.RTS, prio=CTRL_PRIO,
            rpc_id=msg.rpc_id, is_request=True, total_length=msg.length,
            created_ps=msg.created_ps))

    def _out_give_up(self, key: int) -> None:
        dropped = self.outbound.pop(key, None)
        lingered = self._lingering.pop(key, None)
        self.tokens.pop(key, None)
        if dropped is not None or lingered is not None:
            self.outbound_gaveups += 1

    def _in_expire(self, key: int, tries: int) -> None:
        """Tokenized bytes never arrived: name the gaps with gap tokens
        so the sender retransmits exactly the missing ranges."""
        msg = self.inbound.get(key)
        if msg is None:
            self._in_watch.forget(key)
            return
        horizon = min(self.tokens_issued.get(key, 0), msg.length)
        missing = msg.received.gaps(horizon)
        if not missing:
            # Everything granted has arrived; further progress belongs
            # to the token pacer, so the silence is not loss.
            self._in_watch.touch(key)
            self._ensure_pacer()
            return
        count = 0
        for start, end in missing:
            off = start
            while off < end and count < 8:  # bounded; backoff spreads the rest
                size = min(MAX_PAYLOAD, end - off)
                self.resends_sent += 1
                self.send_ctrl(Packet(
                    self.hid, msg.src, PacketType.TOKEN, prio=CTRL_PRIO,
                    rpc_id=msg.rpc_id, is_request=True,
                    offset=off, range_end=off + size))
                count += 1
                off += size
            if count >= 8:
                break

    def _in_give_up(self, key: int) -> None:
        if self.inbound.pop(key, None) is None:
            return
        self.inbound_gaveups += 1
        self.tokens_issued.pop(key, None)
        self.last_data_ps.pop(key, None)
        self.token_grant_ps.pop(key, None)
        self.blacklisted_until.pop(key, None)
