"""NDP (Handley et al., SIGCOMM 2017).

"NDP uses only two priority levels with static assignment ... does not
use SRPT; its receivers use a fair-share scheduling policy ... NDP
senders do not prioritize their transmit queues" (sections 2.2/5.2/7).

Mechanics reproduced here:

* senders blast the first window (one BDP) blindly at low priority;
* switches trim packets to headers when a data queue exceeds 8 full
  packets (``trim_bytes`` in the network config); trimmed headers ride
  the high-priority queue;
* receivers NACK trimmed headers (sender queues a retransmission) and
  pace PULL packets at the downlink rate, round-robin across active
  flows — fair sharing, not SRPT;
* every delivered data packet is ACKed.

As in the paper, NDP is only exercised with workload W5, where all
packets are full size.

Loss recovery (docs/FABRICS.md, active only with a RecoveryConfig):
trimming only protects against congestion loss — when the fabric
destroys a packet outright (random loss, a dying link) no header
survives to NACK, yet the receiver's pull counter already charged
those bytes, so pulls stop and the flow livelocks.  The receiver
therefore re-NACKs gaps below the pulled horizon on a RecoveryTracker
timeout and rolls the pull counter back (mirroring ``_on_trimmed``);
the sender blind-retransmits the first unacked gap when ACK silence
suggests the loss swallowed even the NACK path.  Both sides carry a
bounded give-up budget.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.engine import Simulator
from repro.core.packet import (
    CTRL_PRIO,
    FULL_WIRE,
    MAX_PAYLOAD,
    Packet,
    PacketType,
)
from repro.core.units import ps_per_byte
from repro.transport.base import RecoveryConfig, Transport
from repro.transport.messages import InboundMessage, OutboundMessage

#: low priority for data packets; control/trimmed headers use CTRL_PRIO
DATA_PRIO = 0


class _NdpFlow:
    """Sender-side state: pull allowance plus a retransmission queue."""

    __slots__ = ("msg", "pull_budget", "rtx")

    def __init__(self, msg: OutboundMessage) -> None:
        self.msg = msg
        self.pull_budget = 0
        self.rtx: deque[tuple[int, int]] = deque()

    def sendable(self) -> bool:
        if self.rtx and self.pull_budget > 0:
            return True
        blind = self.msg.sent < min(self.msg.unsched_limit, self.msg.length)
        if blind:
            return True
        return self.pull_budget > 0 and self.msg.sent < self.msg.length


class NdpTransport(Transport):
    """NDP sender+receiver (requires trimming-enabled switch ports)."""

    protocol_name = "ndp"

    def __init__(self, sim: Simulator, *, rtt_bytes: int, host_gbps: int = 10,
                 recovery: RecoveryConfig | None = None) -> None:
        super().__init__(sim, recovery)
        self.first_window = -(-rtt_bytes // MAX_PAYLOAD) * MAX_PAYLOAD
        self.pull_interval_ps = FULL_WIRE * ps_per_byte(host_gbps)
        self.flows: dict[int, _NdpFlow] = {}
        self.inbound: dict[int, InboundMessage] = {}
        # Receiver pull ring: flow keys needing pulls, round robin.
        self._pull_ring: deque[int] = deque()
        self._pulls_issued: dict[int, int] = {}  # key -> bytes pulled
        self._pacer = None
        self.nacks_received = 0
        self.pulls_sent = 0
        # Loss recovery (None on clean fabrics).
        self._flow_watch = self._tracker(self._flow_expire, self._flow_give_up)
        self._in_watch = self._tracker(self._in_expire, self._in_give_up)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send_message(self, dst: int, length: int, **kwargs) -> OutboundMessage:
        msg = OutboundMessage(self.sim.new_id(), True, self.hid, dst, length,
                              unsched_limit=self.first_window,
                              created_ps=self.sim.now)
        self.flows[msg.key] = _NdpFlow(msg)
        if self._flow_watch is not None:
            self._flow_watch.watch(msg.key)
        self.kick()
        return msg

    def _next_data(self) -> Optional[Packet]:
        # FIFO across flows (NDP senders do not prioritize: the paper
        # calls out the resulting head-of-line blocking).
        for flow in self.flows.values():
            if not flow.sendable():
                continue
            return self._emit(flow)
        return None

    def _emit(self, flow: _NdpFlow) -> Packet:
        msg = flow.msg
        if flow.rtx and flow.pull_budget > 0:
            flow.pull_budget -= 1
            offset, size = flow.rtx.popleft()
            retx = True
        elif msg.sent < min(msg.unsched_limit, msg.length):
            offset = msg.sent
            size = min(MAX_PAYLOAD, msg.length - offset)
            msg.sent += size
            retx = False
        else:
            flow.pull_budget -= 1
            offset = msg.sent
            size = min(MAX_PAYLOAD, msg.length - offset)
            msg.sent += size
            retx = False
        if retx:
            self.rtx_data_sent += 1
        if msg.sent >= msg.length and not flow.rtx:
            # State stays for NACK handling until fully acked; NDP keeps
            # it simple here: drop when nothing further can be asked.
            pass
        return Packet(
            self.hid, msg.dst, PacketType.DATA, prio=DATA_PRIO,
            payload=size, rpc_id=msg.rpc_id, is_request=True,
            offset=offset, total_length=msg.length, retx=retx,
            created_ps=msg.created_ps)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == PacketType.DATA:
            if pkt.trimmed:
                self._on_trimmed(pkt)
            else:
                self._on_data(pkt)
        elif pkt.kind == PacketType.PULL:
            self._on_pull(pkt)
        elif pkt.kind == PacketType.NACK:
            self._on_nack(pkt)
        elif pkt.kind == PacketType.ACK:
            self._on_ack(pkt)

    def _register_inbound(self, pkt: Packet) -> InboundMessage:
        key = pkt.msg_key
        msg = self.inbound.get(key)
        if msg is None:
            msg = InboundMessage(pkt.rpc_id, True, pkt.src, self.hid,
                                 pkt.total_length, now_ps=self.sim.now)
            msg.created_ps = pkt.created_ps
            self.inbound[key] = msg
            self._pulls_issued[key] = min(pkt.total_length, self.first_window)
            if self._pulls_issued[key] < pkt.total_length:
                self._pull_ring.append(key)
                self._ensure_pacer()
            if self._in_watch is not None:
                self._in_watch.watch(key)
        return msg

    def _on_trimmed(self, pkt: Packet) -> None:
        """A header survived where the payload was cut: NACK it so the
        sender retransmits when pulled."""
        if (self._in_watch is not None and pkt.msg_key not in self.inbound
                and self._recently_done(pkt.msg_key)):
            self._note_done(pkt.msg_key)  # refresh: peer still retrying
            self._ack_offset(pkt)  # late duplicate of a completed message
            return
        msg = self._register_inbound(pkt)
        if self._in_watch is not None:
            self._in_watch.touch(msg.key)
        self.send_ctrl(Packet(
            self.hid, pkt.src, PacketType.NACK, prio=CTRL_PRIO,
            rpc_id=pkt.rpc_id, is_request=True,
            offset=pkt.offset, range_end=pkt.offset + MAX_PAYLOAD))
        # The trimmed bytes must be re-pulled.
        key = msg.key
        self._pulls_issued[key] = max(
            0, self._pulls_issued.get(key, 0) - MAX_PAYLOAD)
        if key not in self._pull_ring:
            self._pull_ring.append(key)
        self._ensure_pacer()

    def _on_data(self, pkt: Packet) -> None:
        if (self._in_watch is not None and pkt.msg_key not in self.inbound
                and self._recently_done(pkt.msg_key)):
            self._note_done(pkt.msg_key)  # refresh: peer still retrying
            self._ack_offset(pkt)  # late retransmission: re-ACK only
            return
        msg = self._register_inbound(pkt)
        added = msg.record(pkt.offset, pkt.payload, self.sim.now)
        if pkt.retx and added:
            self.rtx_recovered += 1
        if self._in_watch is not None:
            self._in_watch.touch(msg.key)
        self._ack_offset(pkt)
        if msg.is_complete():
            key = msg.key
            del self.inbound[key]
            self._pulls_issued.pop(key, None)
            try:
                self._pull_ring.remove(key)
            except ValueError:
                pass
            if self._in_watch is not None:
                self._in_watch.forget(key)
                self._note_done(key)
            self._report_complete(msg)

    def _ack_offset(self, pkt: Packet) -> None:
        self.send_ctrl(Packet(
            self.hid, pkt.src, PacketType.ACK, prio=CTRL_PRIO,
            rpc_id=pkt.rpc_id, is_request=True, offset=pkt.offset))

    def _on_pull(self, pkt: Packet) -> None:
        flow = self.flows.get(pkt.msg_key)
        if flow is None:
            return
        flow.pull_budget += 1
        if self._flow_watch is not None:
            self._flow_watch.touch(pkt.msg_key)
        self.kick()

    def _on_nack(self, pkt: Packet) -> None:
        flow = self.flows.get(pkt.msg_key)
        if flow is None:
            return
        self.nacks_received += 1
        size = min(MAX_PAYLOAD, flow.msg.length - pkt.offset)
        flow.rtx.append((pkt.offset, size))
        if self._flow_watch is not None:
            self._flow_watch.touch(pkt.msg_key)
        self.kick()

    def _on_ack(self, pkt: Packet) -> None:
        flow = self.flows.get(pkt.msg_key)
        if flow is None:
            return
        flow.msg.acked.add(pkt.offset, min(pkt.offset + MAX_PAYLOAD,
                                           flow.msg.length))
        if flow.msg.acked.total >= flow.msg.length:
            del self.flows[flow.msg.key]
            if self._flow_watch is not None:
                self._flow_watch.forget(flow.msg.key)
        elif self._flow_watch is not None:
            self._flow_watch.touch(pkt.msg_key)

    # ------------------------------------------------------------------
    # loss recovery (hooks only fire when a RecoveryConfig is present)
    # ------------------------------------------------------------------

    def _flow_expire(self, key: int, tries: int) -> None:
        """ACK silence on the sender: blind-retransmit the first unacked
        gap.  Covers a first window the fabric destroyed outright (the
        receiver never learned the message exists) and lost ACK tails;
        arrival re-engages the receiver's own gap machinery."""
        flow = self.flows.get(key)
        if flow is None:
            self._flow_watch.forget(key)
            return
        msg = flow.msg
        gap = msg.acked.first_gap(min(msg.sent, msg.length))
        if gap is None:
            # All sent bytes acked: we are waiting on pulls, and the
            # receiver's recovery timer owns that path.  Deliberately do
            # NOT touch — if the receiver is dead, the budget must burn
            # down to a give-up or the flow leaks.
            return
        offset = gap[0]
        size = min(MAX_PAYLOAD, gap[1] - offset)
        # A recovery credit: the pull that covered these bytes was spent
        # on a packet the fabric destroyed.
        flow.pull_budget += 1
        flow.rtx.appendleft((offset, size))
        self.kick()

    def _flow_give_up(self, key: int) -> None:
        if self.flows.pop(key, None) is not None:
            self.outbound_gaveups += 1

    def _in_expire(self, key: int, tries: int) -> None:
        """Pulled bytes never arrived and no trimmed header survived to
        NACK them: re-NACK the gaps and roll the pull counter back, the
        same repair ``_on_trimmed`` performs when a header does survive."""
        msg = self.inbound.get(key)
        if msg is None:
            self._in_watch.forget(key)
            return
        horizon = min(self._pulls_issued.get(key, 0), msg.length)
        missing = msg.received.gaps(horizon)
        if not missing:
            # Nothing pulled is outstanding; make sure the pacer still
            # has this flow and treat the silence as scheduling delay.
            if (self._pulls_issued.get(key, 0) < msg.length
                    and key not in self._pull_ring):
                self._pull_ring.append(key)
                self._ensure_pacer()
            self._in_watch.touch(key)
            return
        nacked = 0
        limit = 8 * MAX_PAYLOAD  # bounded per expiry; backoff spreads the rest
        for start, end in missing:
            off = start
            while off < end and nacked < limit:
                size = min(MAX_PAYLOAD, end - off)
                self.send_ctrl(Packet(
                    self.hid, msg.src, PacketType.NACK, prio=CTRL_PRIO,
                    rpc_id=msg.rpc_id, is_request=True,
                    offset=off, range_end=off + size))
                nacked += size
                off += size
            if nacked >= limit:
                break
        # The destroyed packets consumed pull credits; give them back so
        # the pacer re-pulls and the sender has budget for the rtx.
        self._pulls_issued[key] = max(
            0, self._pulls_issued.get(key, 0) - nacked)
        if key not in self._pull_ring:
            self._pull_ring.append(key)
        self._ensure_pacer()

    def _in_give_up(self, key: int) -> None:
        if self.inbound.pop(key, None) is None:
            return
        self.inbound_gaveups += 1
        self._pulls_issued.pop(key, None)
        try:
            self._pull_ring.remove(key)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # receiver pull pacing (fair share round robin)
    # ------------------------------------------------------------------

    def _ensure_pacer(self) -> None:
        if self._pacer is not None and Simulator.is_pending(self._pacer):
            return
        if self._pull_ring:
            self._pacer = self.sim.schedule(self.pull_interval_ps, self._pace)

    def _pace(self) -> None:
        self._pacer = None
        while self._pull_ring:
            key = self._pull_ring.popleft()
            msg = self.inbound.get(key)
            if msg is None:
                continue
            issued = self._pulls_issued.get(key, 0)
            if issued >= msg.length:
                continue  # fully pulled; completion removes state
            self._pulls_issued[key] = issued + MAX_PAYLOAD
            if self._pulls_issued[key] < msg.length:
                self._pull_ring.append(key)  # stay in the fair-share ring
            self.pulls_sent += 1
            self.send_ctrl(Packet(
                self.hid, msg.src, PacketType.PULL, prio=CTRL_PRIO,
                rpc_id=msg.rpc_id, is_request=True))
            break
        self._ensure_pacer()
