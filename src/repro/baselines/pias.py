"""PIAS (Bai et al., NSDI 2015): information-agnostic flow scheduling.

"PIAS works with a limited number of priorities, but it assigns
priorities on senders, which limits its ability to approximate SRPT ...
it uses a multi-level queue scheduling policy" (section 2.2).

Mechanics reproduced here:

* sender-side multi-level feedback queue: a message starts at the
  highest priority and is demoted as its transmitted bytes cross the
  workload-tuned thresholds (computed offline to balance bytes per
  level, mirroring PIAS's threshold optimization);
* underneath, a DCTCP-style congestion control: per-flow window, ECN
  marks echoed in ACKs, multiplicative backoff proportional to the
  marked fraction (the alpha estimator), slow start, and a
  retransmission timeout;
* flows on a host share the NIC round-robin — no SRPT at the sender,
  because PIAS is information-agnostic by design.

The paper's observation that "congestion led to ECN-induced backoff in
workload W4, resulting in slowdowns of 20 or more" emerges from the
DCTCP layer.

Loss recovery (docs/FABRICS.md): DCTCP's RTO/go-back-N already handles
clean-path anomalies, so injected-loss additions are gated on a
RecoveryConfig: exponential backoff across consecutive fruitless RTO
rounds with a give-up budget (the bare RTO otherwise retransmits to a
dead peer forever), receiver-side GC of partial inbound messages, and
a full cumulative re-ACK for retransmissions of recently completed
messages (a lost final ACK otherwise triggers go-back-N into a fresh
partial inbound — duplicate delivery).
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import Simulator
from repro.core.packet import MAX_PAYLOAD, N_PRIORITIES, Packet, PacketType
from repro.transport.base import RecoveryConfig, Transport
from repro.transport.messages import InboundMessage, OutboundMessage
from repro.workloads.distributions import EmpiricalCDF

#: DCTCP gain for the alpha estimator
DCTCP_G = 1.0 / 16.0
#: initial window (10 full packets, as in DCTCP deployments)
INIT_CWND = 10 * MAX_PAYLOAD


def pias_thresholds(cdf: EmpiricalCDF, n_prios: int = N_PRIORITIES) -> tuple[int, ...]:
    """Demotion thresholds balancing transmitted bytes across levels.

    PIAS derives thresholds from the workload's flow size distribution;
    equalizing the per-level byte volume is the same objective Homa uses
    for unscheduled cutoffs, so we reuse that machinery with an infinite
    cap (every byte of every message passes through the MLFQ).
    """
    from repro.homa.priorities import compute_cutoffs

    return compute_cutoffs(cdf, n_prios, cdf.max_bytes())


class _PiasFlow:
    """Sender-side DCTCP state for one message."""

    __slots__ = ("msg", "cwnd", "ssthresh", "alpha", "acked_prefix",
                 "window_sent", "window_marked", "window_end",
                 "dup_acks", "last_send_ps", "recovery_until",
                 "rec_rounds", "next_rto_ps", "high_water")

    def __init__(self, msg: OutboundMessage) -> None:
        self.msg = msg
        self.cwnd = float(INIT_CWND)
        self.ssthresh = float(1 << 40)
        self.alpha = 0.0
        self.acked_prefix = 0
        self.window_sent = 0
        self.window_marked = 0
        self.window_end = INIT_CWND
        self.dup_acks = 0
        self.last_send_ps = 0
        self.recovery_until = 0
        self.rec_rounds = 0   # consecutive fruitless RTOs (recovery only)
        self.next_rto_ps = 0  # backoff gate for the next RTO action
        self.high_water = 0   # highest byte ever sent (marks go-back-N retx)

    def can_send(self) -> bool:
        return (self.msg.sent - self.acked_prefix < self.cwnd
                and self.msg.sent < self.msg.length)


class PiasTransport(Transport):
    """PIAS = MLFQ priorities + DCTCP congestion control."""

    protocol_name = "pias"

    def __init__(
        self,
        sim: Simulator,
        *,
        thresholds: tuple[int, ...],
        rtt_ps: int,
        min_rto_ps: int | None = None,
        recovery: RecoveryConfig | None = None,
    ) -> None:
        super().__init__(sim, recovery)
        self.thresholds = thresholds
        self.rto_ps = min_rto_ps or max(20 * rtt_ps, 200_000_000)  # >=200 us
        self.flows: dict[int, _PiasFlow] = {}
        self._rr: list[int] = []  # round-robin order of flow keys
        self.inbound: dict[int, InboundMessage] = {}
        self._timer = None
        self.retransmissions = 0
        self.backoffs = 0
        # Receiver GC of partial inbound messages (None on clean fabrics).
        self._in_watch = self._tracker(self._in_idle, self._in_give_up)
        if recovery is not None:
            # Done-memory must outlive the sender's retry *spacing*,
            # which here is RTO-scaled (backoff gate <= 4*rto plus the
            # rto-granular check timer), not recovery-scaled: the RTO
            # floor (>=200 us) dwarfs the recovery base on small-RTT
            # fabrics, and an expired memory turns a late go-back-N
            # into a duplicate delivery.
            self._done_horizon_ps = max(self._done_horizon_ps,
                                        8 * self.rto_ps)

    # ------------------------------------------------------------------
    # MLFQ priority
    # ------------------------------------------------------------------

    def _prio_for(self, bytes_sent: int) -> int:
        """Highest priority first, demoted as bytes_sent crosses
        thresholds (PIAS table lookup)."""
        for index, threshold in enumerate(self.thresholds):
            if bytes_sent < threshold:
                return N_PRIORITIES - 1 - index
        return 0

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send_message(self, dst: int, length: int, **kwargs) -> OutboundMessage:
        msg = OutboundMessage(self.sim.new_id(), True, self.hid, dst, length,
                              unsched_limit=length, created_ps=self.sim.now)
        flow = _PiasFlow(msg)
        self.flows[msg.key] = flow
        self._rr.append(msg.key)
        self._ensure_timer()
        self.kick()
        return msg

    def _next_data(self) -> Optional[Packet]:
        # Round-robin across flows with window room (no SRPT: PIAS is
        # information-agnostic at the sender).
        for _ in range(len(self._rr)):
            key = self._rr.pop(0)
            flow = self.flows.get(key)
            if flow is None:
                continue
            self._rr.append(key)
            if flow.can_send():
                return self._emit(flow)
        return None

    def _emit(self, flow: _PiasFlow) -> Packet:
        msg = flow.msg
        offset = msg.sent
        size = min(MAX_PAYLOAD, msg.length - offset,
                   max(1, int(flow.cwnd - (msg.sent - flow.acked_prefix))))
        msg.sent += size
        flow.last_send_ps = self.sim.now
        retx = offset < flow.high_water  # go-back-N re-covers old bytes
        if msg.sent > flow.high_water:
            flow.high_water = msg.sent
        if retx:
            self.rtx_data_sent += 1
        return Packet(
            self.hid, msg.dst, PacketType.DATA,
            prio=self._prio_for(offset), payload=size,
            rpc_id=msg.rpc_id, is_request=True, offset=offset,
            total_length=msg.length, retx=retx, created_ps=msg.created_ps)

    def _retransmit_from(self, flow: _PiasFlow, offset: int) -> None:
        """Go-back-N from the acked prefix."""
        self.retransmissions += 1
        flow.msg.sent = offset
        self.kick()

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == PacketType.DATA:
            self._on_data(pkt)
        elif pkt.kind == PacketType.ACK:
            self._on_ack(pkt)

    def _on_data(self, pkt: Packet) -> None:
        key = pkt.msg_key
        msg = self.inbound.get(key)
        if msg is None:
            if self._in_watch is not None and self._recently_done(key):
                # Late go-back-N of a completed message (the final ACK
                # was lost): re-ACK the full length, never re-register —
                # a fresh partial inbound here is a duplicate delivery.
                self._note_done(key)  # refresh: the peer is still retrying
                ack = Packet(self.hid, pkt.src, PacketType.ACK, prio=7,
                             rpc_id=pkt.rpc_id, is_request=True,
                             offset=pkt.total_length)
                ack.ecn = pkt.ecn
                self.send_ctrl(ack)
                return
            msg = InboundMessage(pkt.rpc_id, True, pkt.src, self.hid,
                                 pkt.total_length, now_ps=self.sim.now)
            msg.created_ps = pkt.created_ps
            self.inbound[key] = msg
            if self._in_watch is not None:
                self._in_watch.watch(key)
        added = msg.record(pkt.offset, pkt.payload, self.sim.now)
        if pkt.retx and added:
            self.rtx_recovered += 1
        if self._in_watch is not None:
            self._in_watch.touch(key)
        # Cumulative ACK echoing the ECN mark (DCTCP's feedback loop).
        ack = Packet(self.hid, pkt.src, PacketType.ACK, prio=7,
                     rpc_id=pkt.rpc_id, is_request=True,
                     offset=msg.received.contiguous_prefix())
        ack.ecn = pkt.ecn
        self.send_ctrl(ack)
        if msg.is_complete():
            del self.inbound[key]
            if self._in_watch is not None:
                self._in_watch.forget(key)
                self._note_done(key)
            self._report_complete(msg)

    def _on_ack(self, pkt: Packet) -> None:
        flow = self.flows.get(pkt.msg_key)
        if flow is None:
            return
        msg = flow.msg
        advanced = pkt.offset > flow.acked_prefix
        # DCTCP alpha bookkeeping per window of data.
        flow.window_sent += 1
        if pkt.ecn:
            flow.window_marked += 1
        if pkt.offset >= flow.window_end or pkt.offset >= msg.length:
            fraction = (flow.window_marked / flow.window_sent
                        if flow.window_sent else 0.0)
            flow.alpha = (1 - DCTCP_G) * flow.alpha + DCTCP_G * fraction
            if flow.window_marked and self.sim.now >= flow.recovery_until:
                flow.cwnd = max(MAX_PAYLOAD, flow.cwnd * (1 - flow.alpha / 2))
                flow.recovery_until = self.sim.now + self.rto_ps // 8
                self.backoffs += 1
            flow.window_sent = flow.window_marked = 0
            flow.window_end = pkt.offset + int(flow.cwnd)
        if advanced:
            delta = pkt.offset - flow.acked_prefix
            flow.acked_prefix = pkt.offset
            flow.dup_acks = 0
            flow.rec_rounds = 0  # forward progress proves the peer lives
            flow.next_rto_ps = 0
            if flow.cwnd < flow.ssthresh:
                flow.cwnd += delta  # slow start
            else:
                flow.cwnd += MAX_PAYLOAD * delta / flow.cwnd
        else:
            flow.dup_acks += 1
            if flow.dup_acks == 3 and self.sim.now >= flow.recovery_until:
                flow.ssthresh = max(MAX_PAYLOAD, flow.cwnd / 2)
                flow.cwnd = flow.ssthresh
                flow.recovery_until = self.sim.now + self.rto_ps // 8
                self._retransmit_from(flow, flow.acked_prefix)
        if flow.acked_prefix >= msg.length:
            self.flows.pop(msg.key, None)
        self.kick()

    # ------------------------------------------------------------------
    # retransmission timeout
    # ------------------------------------------------------------------

    def _ensure_timer(self) -> None:
        if self._timer is not None and Simulator.is_pending(self._timer):
            return
        if self.flows:
            self._timer = self.sim.schedule(self.rto_ps, self._check_timeouts)

    def _check_timeouts(self) -> None:
        self._timer = None
        now = self.sim.now
        for flow in list(self.flows.values()):
            in_flight = flow.msg.sent - flow.acked_prefix
            if in_flight > 0 and now - flow.last_send_ps >= self.rto_ps:
                if self.recovery is not None:
                    # Injected loss: back off across fruitless RTO
                    # rounds and retire the flow once the budget is
                    # spent — a bare RTO retransmits to a dead peer
                    # forever.
                    if now < flow.next_rto_ps:
                        continue
                    flow.rec_rounds += 1
                    if flow.rec_rounds > self.recovery.max_tries:
                        self.flows.pop(flow.msg.key, None)
                        self.outbound_gaveups += 1
                        continue
                    backoff = self.rto_ps * (
                        self.recovery.factor ** flow.rec_rounds)
                    flow.next_rto_ps = now + min(backoff, 4 * self.rto_ps)
                flow.ssthresh = max(MAX_PAYLOAD, flow.cwnd / 2)
                flow.cwnd = float(MAX_PAYLOAD)
                self._retransmit_from(flow, flow.acked_prefix)
        self._ensure_timer()

    # ------------------------------------------------------------------
    # loss recovery (hooks only fire when a RecoveryConfig is present)
    # ------------------------------------------------------------------

    def _in_idle(self, key: int, tries: int) -> None:
        """The receiver is passive in PIAS — the sender's RTO owns
        retransmission — so expiries just burn down the GC budget."""

    def _in_give_up(self, key: int) -> None:
        """Sender went silent mid-message: GC the partial inbound."""
        if self.inbound.pop(key, None) is not None:
            self.inbound_gaveups += 1
