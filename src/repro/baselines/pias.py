"""PIAS (Bai et al., NSDI 2015): information-agnostic flow scheduling.

"PIAS works with a limited number of priorities, but it assigns
priorities on senders, which limits its ability to approximate SRPT ...
it uses a multi-level queue scheduling policy" (section 2.2).

Mechanics reproduced here:

* sender-side multi-level feedback queue: a message starts at the
  highest priority and is demoted as its transmitted bytes cross the
  workload-tuned thresholds (computed offline to balance bytes per
  level, mirroring PIAS's threshold optimization);
* underneath, a DCTCP-style congestion control: per-flow window, ECN
  marks echoed in ACKs, multiplicative backoff proportional to the
  marked fraction (the alpha estimator), slow start, and a
  retransmission timeout;
* flows on a host share the NIC round-robin — no SRPT at the sender,
  because PIAS is information-agnostic by design.

The paper's observation that "congestion led to ECN-induced backoff in
workload W4, resulting in slowdowns of 20 or more" emerges from the
DCTCP layer.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import Simulator
from repro.core.packet import MAX_PAYLOAD, N_PRIORITIES, Packet, PacketType
from repro.transport.base import Transport
from repro.transport.messages import InboundMessage, OutboundMessage
from repro.workloads.distributions import EmpiricalCDF

#: DCTCP gain for the alpha estimator
DCTCP_G = 1.0 / 16.0
#: initial window (10 full packets, as in DCTCP deployments)
INIT_CWND = 10 * MAX_PAYLOAD


def pias_thresholds(cdf: EmpiricalCDF, n_prios: int = N_PRIORITIES) -> tuple[int, ...]:
    """Demotion thresholds balancing transmitted bytes across levels.

    PIAS derives thresholds from the workload's flow size distribution;
    equalizing the per-level byte volume is the same objective Homa uses
    for unscheduled cutoffs, so we reuse that machinery with an infinite
    cap (every byte of every message passes through the MLFQ).
    """
    from repro.homa.priorities import compute_cutoffs

    return compute_cutoffs(cdf, n_prios, cdf.max_bytes())


class _PiasFlow:
    """Sender-side DCTCP state for one message."""

    __slots__ = ("msg", "cwnd", "ssthresh", "alpha", "acked_prefix",
                 "window_sent", "window_marked", "window_end",
                 "dup_acks", "last_send_ps", "recovery_until")

    def __init__(self, msg: OutboundMessage) -> None:
        self.msg = msg
        self.cwnd = float(INIT_CWND)
        self.ssthresh = float(1 << 40)
        self.alpha = 0.0
        self.acked_prefix = 0
        self.window_sent = 0
        self.window_marked = 0
        self.window_end = INIT_CWND
        self.dup_acks = 0
        self.last_send_ps = 0
        self.recovery_until = 0

    def can_send(self) -> bool:
        return (self.msg.sent - self.acked_prefix < self.cwnd
                and self.msg.sent < self.msg.length)


class PiasTransport(Transport):
    """PIAS = MLFQ priorities + DCTCP congestion control."""

    protocol_name = "pias"

    def __init__(
        self,
        sim: Simulator,
        *,
        thresholds: tuple[int, ...],
        rtt_ps: int,
        min_rto_ps: int | None = None,
    ) -> None:
        super().__init__(sim)
        self.thresholds = thresholds
        self.rto_ps = min_rto_ps or max(20 * rtt_ps, 200_000_000)  # >=200 us
        self.flows: dict[int, _PiasFlow] = {}
        self._rr: list[int] = []  # round-robin order of flow keys
        self.inbound: dict[int, InboundMessage] = {}
        self._timer = None
        self.retransmissions = 0
        self.backoffs = 0

    # ------------------------------------------------------------------
    # MLFQ priority
    # ------------------------------------------------------------------

    def _prio_for(self, bytes_sent: int) -> int:
        """Highest priority first, demoted as bytes_sent crosses
        thresholds (PIAS table lookup)."""
        for index, threshold in enumerate(self.thresholds):
            if bytes_sent < threshold:
                return N_PRIORITIES - 1 - index
        return 0

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send_message(self, dst: int, length: int, **kwargs) -> OutboundMessage:
        msg = OutboundMessage(self.sim.new_id(), True, self.hid, dst, length,
                              unsched_limit=length, created_ps=self.sim.now)
        flow = _PiasFlow(msg)
        self.flows[msg.key] = flow
        self._rr.append(msg.key)
        self._ensure_timer()
        self.kick()
        return msg

    def _next_data(self) -> Optional[Packet]:
        # Round-robin across flows with window room (no SRPT: PIAS is
        # information-agnostic at the sender).
        for _ in range(len(self._rr)):
            key = self._rr.pop(0)
            flow = self.flows.get(key)
            if flow is None:
                continue
            self._rr.append(key)
            if flow.can_send():
                return self._emit(flow)
        return None

    def _emit(self, flow: _PiasFlow) -> Packet:
        msg = flow.msg
        offset = msg.sent
        size = min(MAX_PAYLOAD, msg.length - offset,
                   max(1, int(flow.cwnd - (msg.sent - flow.acked_prefix))))
        msg.sent += size
        flow.last_send_ps = self.sim.now
        return Packet(
            self.hid, msg.dst, PacketType.DATA,
            prio=self._prio_for(offset), payload=size,
            rpc_id=msg.rpc_id, is_request=True, offset=offset,
            total_length=msg.length, created_ps=msg.created_ps)

    def _retransmit_from(self, flow: _PiasFlow, offset: int) -> None:
        """Go-back-N from the acked prefix."""
        self.retransmissions += 1
        flow.msg.sent = offset
        self.kick()

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def on_packet(self, pkt: Packet) -> None:
        if pkt.kind == PacketType.DATA:
            self._on_data(pkt)
        elif pkt.kind == PacketType.ACK:
            self._on_ack(pkt)

    def _on_data(self, pkt: Packet) -> None:
        key = pkt.msg_key
        msg = self.inbound.get(key)
        if msg is None:
            msg = InboundMessage(pkt.rpc_id, True, pkt.src, self.hid,
                                 pkt.total_length, now_ps=self.sim.now)
            msg.created_ps = pkt.created_ps
            self.inbound[key] = msg
        msg.record(pkt.offset, pkt.payload, self.sim.now)
        # Cumulative ACK echoing the ECN mark (DCTCP's feedback loop).
        ack = Packet(self.hid, pkt.src, PacketType.ACK, prio=7,
                     rpc_id=pkt.rpc_id, is_request=True,
                     offset=msg.received.contiguous_prefix())
        ack.ecn = pkt.ecn
        self.send_ctrl(ack)
        if msg.is_complete():
            del self.inbound[key]
            self._report_complete(msg)

    def _on_ack(self, pkt: Packet) -> None:
        flow = self.flows.get(pkt.msg_key)
        if flow is None:
            return
        msg = flow.msg
        advanced = pkt.offset > flow.acked_prefix
        # DCTCP alpha bookkeeping per window of data.
        flow.window_sent += 1
        if pkt.ecn:
            flow.window_marked += 1
        if pkt.offset >= flow.window_end or pkt.offset >= msg.length:
            fraction = (flow.window_marked / flow.window_sent
                        if flow.window_sent else 0.0)
            flow.alpha = (1 - DCTCP_G) * flow.alpha + DCTCP_G * fraction
            if flow.window_marked and self.sim.now >= flow.recovery_until:
                flow.cwnd = max(MAX_PAYLOAD, flow.cwnd * (1 - flow.alpha / 2))
                flow.recovery_until = self.sim.now + self.rto_ps // 8
                self.backoffs += 1
            flow.window_sent = flow.window_marked = 0
            flow.window_end = pkt.offset + int(flow.cwnd)
        if advanced:
            delta = pkt.offset - flow.acked_prefix
            flow.acked_prefix = pkt.offset
            flow.dup_acks = 0
            if flow.cwnd < flow.ssthresh:
                flow.cwnd += delta  # slow start
            else:
                flow.cwnd += MAX_PAYLOAD * delta / flow.cwnd
        else:
            flow.dup_acks += 1
            if flow.dup_acks == 3 and self.sim.now >= flow.recovery_until:
                flow.ssthresh = max(MAX_PAYLOAD, flow.cwnd / 2)
                flow.cwnd = flow.ssthresh
                flow.recovery_until = self.sim.now + self.rto_ps // 8
                self._retransmit_from(flow, flow.acked_prefix)
        if flow.acked_prefix >= msg.length:
            self.flows.pop(msg.key, None)
        self.kick()

    # ------------------------------------------------------------------
    # retransmission timeout
    # ------------------------------------------------------------------

    def _ensure_timer(self) -> None:
        if self._timer is not None and Simulator.is_pending(self._timer):
            return
        if self.flows:
            self._timer = self.sim.schedule(self.rto_ps, self._check_timeouts)

    def _check_timeouts(self) -> None:
        self._timer = None
        now = self.sim.now
        for flow in list(self.flows.values()):
            in_flight = flow.msg.sent - flow.acked_prefix
            if in_flight > 0 and now - flow.last_send_ps >= self.rto_ps:
                flow.ssthresh = max(MAX_PAYLOAD, flow.cwnd / 2)
                flow.cwnd = float(MAX_PAYLOAD)
                self._retransmit_from(flow, flow.acked_prefix)
        self._ensure_timer()
