"""Baseline transports the paper compares against (section 5.2).

* ``pfabric`` — fine-grained remaining-size priorities, tiny
  priority-drop switch buffers, line-rate senders (pFabric, SIGCOMM'13);
* ``phost``  — receiver token scheduling, 2 static priorities, no
  overcommitment (pHost, CoNEXT'15);
* ``pias``   — sender-side multi-level feedback queue priorities over a
  DCTCP-style ECN congestion control (PIAS, NSDI'15);
* ``ndp``    — switch packet trimming, receiver pull pacing with
  fair-share scheduling (NDP, SIGCOMM'17);
* ``stream`` — a connection-oriented FIFO byte-stream transport (the
  TCP / InfRC comparisons of section 5.1);
* Basic      — Homa with one priority and unlimited overcommitment
  (``HomaConfig.basic()``), as in RAMCloud.
"""

from repro.baselines.stream import StreamTransport
from repro.baselines.phost import PHostTransport
from repro.baselines.pfabric import PfabricTransport
from repro.baselines.pias import PiasTransport
from repro.baselines.ndp import NdpTransport

__all__ = [
    "StreamTransport",
    "PHostTransport",
    "PfabricTransport",
    "PiasTransport",
    "NdpTransport",
]
