"""Traffic-generating applications used by the paper's experiments."""

from repro.apps.openloop import OpenLoopSender, attach_openloop_workload
from repro.apps.echo import EchoClient, attach_echo_servers, attach_echo_workload
from repro.apps.incast import IncastClient

__all__ = [
    "OpenLoopSender",
    "attach_openloop_workload",
    "EchoClient",
    "attach_echo_servers",
    "attach_echo_workload",
    "IncastClient",
]
