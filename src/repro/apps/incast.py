"""Incast experiment application (Figure 10).

"A single client initiated a large number of RPCs in parallel to a
collection of servers.  Each RPC had a tiny request and a response of
approximately RTTbytes (10 KB)."  The client keeps ``concurrency`` RPCs
outstanding for the duration of the run (issuing a replacement as each
completes) and reports the goodput of received responses.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import Simulator

REQUEST_BYTES = 100
RESPONSE_BYTES = 10_000


class IncastClient:
    """Closed-loop incast generator on one host."""

    def __init__(
        self,
        sim: Simulator,
        transport,
        servers: list[int],
        concurrency: int,
        *,
        seed: int = 1,
        request_bytes: int = REQUEST_BYTES,
        response_bytes: int = RESPONSE_BYTES,
    ) -> None:
        self.sim = sim
        self.transport = transport
        self.servers = servers
        self.concurrency = concurrency
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.rng = np.random.default_rng(seed)
        self.completed = 0
        self.errors = 0
        self.response_bytes_received = 0
        self.started_ps = sim.now
        self._next_server = 0
        for _ in range(concurrency):
            self._issue()

    def _issue(self) -> None:
        dst = self.servers[self._next_server % len(self.servers)]
        self._next_server += 1
        self.transport.send_rpc(
            dst, self.request_bytes,
            app_meta=self.response_bytes,
            on_response=self._on_response,
            on_error=self._on_error)

    def _on_response(self, rpc_id: int, msg) -> None:
        self.completed += 1
        self.response_bytes_received += msg.length
        self._issue()

    def _on_error(self, rpc_id: int) -> None:
        self.errors += 1
        self._issue()

    def goodput_gbps(self) -> float:
        """Response goodput since construction, in Gbit/s."""
        elapsed_s = (self.sim.now - self.started_ps) / 1e12
        if elapsed_s <= 0:
            return 0.0
        return self.response_bytes_received * 8 / elapsed_s / 1e9
