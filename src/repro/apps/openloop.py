"""Open-loop one-way message generation (the section 5.2 experiments).

"New messages are created at senders according to a Poisson process;
the size of each message is chosen from one of the workloads in Figure
1, and the destination for the message is chosen uniformly at random."
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import Simulator
from repro.core.topology import Network
from repro.workloads.distributions import EmpiricalCDF


class OpenLoopSender:
    """Poisson generator of one-way messages from one host."""

    def __init__(
        self,
        sim: Simulator,
        transport,
        peers: list[int],
        cdf: EmpiricalCDF,
        rate_per_sec: float,
        *,
        seed: int,
        stop_ps: int,
        max_messages: int | None = None,
        delay_tracker=None,
    ) -> None:
        self.sim = sim
        self.transport = transport
        self.peers = peers
        self.cdf = cdf
        self.mean_ia_ps = 1e12 / rate_per_sec
        self.rng = np.random.default_rng(seed)
        self.stop_ps = stop_ps
        self.max_messages = max_messages
        self.delay_tracker = delay_tracker
        self.submitted = 0
        self.submitted_bytes = 0
        self._schedule_next()

    def _schedule_next(self) -> None:
        delay = int(self.rng.exponential(self.mean_ia_ps)) + 1
        if self.sim.now + delay >= self.stop_ps:
            return
        if self.max_messages is not None and self.submitted >= self.max_messages:
            return
        self.sim.schedule(delay, self._send)

    def _send(self) -> None:
        size = self.cdf.sample_one(self.rng)
        dst = self.peers[self.rng.integers(len(self.peers))]
        msg = self.transport.send_message(dst, size)
        self.submitted += 1
        self.submitted_bytes += size
        if self.delay_tracker is not None:
            alloc = getattr(self.transport, "alloc", None)
            prio = alloc.unsched_prio(size) if alloc is not None else 0
            self.delay_tracker.on_submit(self.transport.host, msg.key,
                                         size, prio)
        self._schedule_next()


def attach_openloop_workload(
    net: Network,
    transports,
    cdf: EmpiricalCDF,
    rate_per_sec: float,
    *,
    stop_ps: int,
    seed: int = 1,
    max_messages_total: int | None = None,
    delay_tracker=None,
) -> list[OpenLoopSender]:
    """One generator per host, all-to-all uniform destinations."""
    n = len(net.hosts)
    per_host_cap = None
    if max_messages_total is not None:
        per_host_cap = max(1, max_messages_total // n)
    senders = []
    for host, transport in zip(net.hosts, transports):
        peers = [h for h in range(n) if h != host.hid]
        senders.append(OpenLoopSender(
            net.sim, transport, peers, cdf, rate_per_sec,
            seed=seed * 100_003 + host.hid, stop_ps=stop_ps,
            max_messages=per_host_cap, delay_tracker=delay_tracker))
    return senders
