"""Echo RPC applications (the section 5.1 implementation experiments).

"Each client generated a series of echo RPCs; each RPC sent a block of
a given size to a server, and the server returned the block back to the
client.  Clients chose RPC sizes pseudo-randomly to match one of the
workloads ... with Poisson arrivals configured to generate a particular
network load.  The server for each RPC was chosen at random."
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.engine import Simulator
from repro.core.topology import Network
from repro.workloads.distributions import EmpiricalCDF


def echo_handler(transport, server_rpc) -> None:
    """Server side: return a block of the same size (or app_meta hint)."""
    length = server_rpc.app_meta or server_rpc.request_length
    transport.respond(server_rpc, length)


def attach_echo_servers(transports, hosts: list[int]) -> None:
    for hid in hosts:
        transports[hid].rpc_handler = echo_handler


class EchoClient:
    """Open-loop Poisson echo-RPC client on one host."""

    def __init__(
        self,
        sim: Simulator,
        transport,
        servers: list[int],
        cdf: EmpiricalCDF,
        rate_per_sec: float,
        *,
        seed: int,
        stop_ps: int,
        on_complete: Optional[Callable] = None,
        max_rpcs: int | None = None,
    ) -> None:
        self.sim = sim
        self.transport = transport
        self.servers = servers
        self.cdf = cdf
        self.mean_ia_ps = 1e12 / rate_per_sec
        self.rng = np.random.default_rng(seed)
        self.stop_ps = stop_ps
        self.on_complete = on_complete
        self.max_rpcs = max_rpcs
        self.submitted = 0
        self.completed = 0
        self.errors = 0
        self._sizes: dict[int, tuple[int, int, int]] = {}  # rpc -> (dst, size, t0)
        self._schedule_next()

    def _schedule_next(self) -> None:
        delay = int(self.rng.exponential(self.mean_ia_ps)) + 1
        if self.sim.now + delay >= self.stop_ps:
            return
        if self.max_rpcs is not None and self.submitted >= self.max_rpcs:
            return
        self.sim.schedule(delay, self._send)

    def _send(self) -> None:
        size = self.cdf.sample_one(self.rng)
        dst = self.servers[self.rng.integers(len(self.servers))]
        rpc_id = self.transport.send_rpc(
            dst, size, on_response=self._on_response, on_error=self._on_error)
        self._sizes[rpc_id] = (dst, size, self.sim.now)
        self.submitted += 1
        self._schedule_next()

    def _on_response(self, rpc_id: int, msg) -> None:
        dst, size, t0 = self._sizes.pop(rpc_id)
        self.completed += 1
        if self.on_complete is not None:
            self.on_complete(self.transport.hid, dst, size, t0, self.sim.now)

    def _on_error(self, rpc_id: int) -> None:
        self._sizes.pop(rpc_id, None)
        self.errors += 1


def attach_echo_workload(
    net: Network,
    transports,
    cdf: EmpiricalCDF,
    rate_per_sec: float,
    *,
    stop_ps: int,
    seed: int = 1,
    on_complete: Optional[Callable] = None,
    max_rpcs_total: int | None = None,
) -> list[EchoClient]:
    """First half of the hosts are clients, second half are servers
    (the paper's 8-client / 8-server CloudLab arrangement)."""
    n = len(net.hosts)
    clients = list(range(n // 2))
    servers = list(range(n // 2, n))
    attach_echo_servers(transports, servers)
    per_client_cap = None
    if max_rpcs_total is not None:
        per_client_cap = max(1, max_rpcs_total // len(clients))
    apps = []
    for hid in clients:
        apps.append(EchoClient(
            net.sim, transports[hid], servers, cdf, rate_per_sec,
            seed=seed * 99_991 + hid, stop_ps=stop_ps,
            on_complete=on_complete, max_rpcs=per_client_cap))
    return apps
