"""Port probe composition: several collectors sharing one port.

Probe hooks fire on every enqueue/dequeue/transmission, so the
composite keeps its children in a flat tuple (nested composites are
flattened on attach) and iterates that tuple directly — no recursive
dispatch on the hot path.
"""

from __future__ import annotations

from repro.core.port import PortProbe


class CompositeProbe(PortProbe):
    """Fans every port event out to a flat tuple of probes."""

    def __init__(self, probes) -> None:
        flat: list[PortProbe] = []
        for probe in probes:
            if isinstance(probe, CompositeProbe):
                flat.extend(probe.probes)
            else:
                flat.append(probe)
        self.probes = tuple(flat)

    def on_queue_change(self, now_ps, qbytes):
        for probe in self.probes:
            probe.on_queue_change(now_ps, qbytes)

    def on_busy_change(self, now_ps, busy):
        for probe in self.probes:
            probe.on_busy_change(now_ps, busy)

    def on_tx_done(self, now_ps, pkt):
        for probe in self.probes:
            probe.on_tx_done(now_ps, pkt)

    def on_drop(self, now_ps, pkt):
        for probe in self.probes:
            probe.on_drop(now_ps, pkt)


def attach_probe(port, probe: PortProbe) -> None:
    """Attach a probe to a port, composing with any existing probe."""
    if port.probe is None:
        port.probe = probe
    else:
        port.probe = CompositeProbe([port.probe, probe])
