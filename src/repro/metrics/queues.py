"""Switch queue length statistics (Table 1).

The paper reports time-averaged and maximum egress queue lengths, in
KB, at the three switch levels (TOR->Aggr, Aggr->TOR, TOR->host),
excluding partially-transmitted packets — exactly what the port's
``qbytes`` tracks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.port import PortProbe
from repro.core.topology import Network
from repro.metrics.probes import attach_probe

#: Table 1 row labels keyed by port level tags
LEVELS = {
    "tor_up": "TOR->Aggr",
    "aggr_down": "Aggr->TOR",
    "tor_down": "TOR->host",
}


class QueueLengthProbe(PortProbe):
    """Time-weighted average and maximum of one port's queued bytes."""

    def __init__(self, start_ps: int) -> None:
        self.last_ps = start_ps
        self.last_qbytes = 0
        self.integral = 0  # byte·ps
        self.max_qbytes = 0

    def on_queue_change(self, now_ps: int, qbytes: int) -> None:
        self.integral += self.last_qbytes * (now_ps - self.last_ps)
        self.last_ps = now_ps
        self.last_qbytes = qbytes
        if qbytes > self.max_qbytes:
            self.max_qbytes = qbytes

    def mean_bytes(self, end_ps: int, start_ps: int) -> float:
        duration = end_ps - start_ps
        if duration <= 0:
            return 0.0
        integral = self.integral + self.last_qbytes * (end_ps - self.last_ps)
        return integral / duration


@dataclass
class QueueLevelStats:
    label: str
    mean_kb: float
    max_kb: float

    def row(self) -> str:
        return f"{self.label:<12} mean {self.mean_kb:7.1f} KB   max {self.max_kb:8.1f} KB"


class QueueStats:
    """Attaches queue probes to every switch port, grouped by level."""

    def __init__(self, net: Network) -> None:
        self.net = net
        self.start_ps = net.sim.now
        self.probes: dict[str, list[QueueLengthProbe]] = {
            level: [] for level in LEVELS}
        for port in net.all_switch_ports():
            if port.level in self.probes:
                probe = QueueLengthProbe(self.start_ps)
                self.probes[port.level].append(probe)
                attach_probe(port, probe)

    def report(self) -> list[QueueLevelStats]:
        end_ps = self.net.sim.now
        rows = []
        for level, label in LEVELS.items():
            probes = self.probes[level]
            if not probes:
                continue
            means = [p.mean_bytes(end_ps, self.start_ps) for p in probes]
            maxes = [p.max_qbytes for p in probes]
            rows.append(QueueLevelStats(
                label=label,
                mean_kb=sum(means) / len(means) / 1000.0,
                max_kb=max(maxes) / 1000.0,
            ))
        return rows
