"""Measurement machinery for reproducing the paper's figures/tables."""

from repro.metrics.slowdown import BucketStats, SlowdownTracker
from repro.metrics.queues import QueueLengthProbe, QueueStats
from repro.metrics.bandwidth import ThroughputMeter, WastedBandwidthTracker
from repro.metrics.control import ControlTraffic
from repro.metrics.priousage import PriorityUsage
from repro.metrics.delays import DelayDecomposition
from repro.metrics.probes import CompositeProbe

__all__ = [
    "BucketStats",
    "ControlTraffic",
    "SlowdownTracker",
    "QueueLengthProbe",
    "QueueStats",
    "ThroughputMeter",
    "WastedBandwidthTracker",
    "PriorityUsage",
    "DelayDecomposition",
    "CompositeProbe",
]
