"""Control-traffic accounting: how many control events a run emitted.

Homa's receiver paces senders with GRANT packets, and the cost of that
control traffic — one GRANT per scheduled data packet in the paper's
simulator — is the dominant per-packet overhead at high load (it is the
motivation for the batched grant pacer, ``HomaConfig.grant_batch_ns``).
This collector sums the per-transport counters after a run so the
reduction is measurable: ``benchmarks/bench_perf_hotpaths.py
--grant-batching`` records the legacy-vs-batched grant counts in
``BENCH_hotpaths.json``.

Counters are read with ``getattr(..., 0)`` so non-Homa transports (and
future protocols without a given counter) participate with zeros.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class ControlTraffic:
    """Control-event totals summed over every transport in a run."""

    #: GRANT packets emitted by receivers
    grants: int = 0
    #: RESEND packets emitted (receiver timeouts and client probes)
    resends: int = 0
    #: BUSY packets emitted by senders
    busys: int = 0
    #: grant-pacer timer firings (0 in legacy per-packet mode)
    grant_ticks: int = 0
    #: DATA packets retransmitted in answer to a RESEND
    rtx_data: int = 0
    #: retransmitted DATA packets that filled a real receive gap
    #: (rtx_data minus this is spurious retransmission)
    rtx_recovered: int = 0
    #: inbound messages abandoned after exhausting the retry budget
    give_ups: int = 0
    #: outbound messages retired by sender-side give-up or peer-liveness
    #: GC (docs/FABRICS.md recovery table)
    outbound_give_ups: int = 0

    @classmethod
    def collect(cls, transports: Iterable) -> "ControlTraffic":
        """Sum the control counters of every transport."""
        grants = resends = busys = ticks = 0
        rtx = recovered = gaveups = out_gaveups = 0
        for transport in transports:
            grants += getattr(transport, "grants_sent", 0)
            resends += getattr(transport, "resends_sent", 0)
            busys += getattr(transport, "busys_sent", 0)
            ticks += getattr(transport, "grant_ticks", 0)
            rtx += getattr(transport, "rtx_data_sent", 0)
            recovered += getattr(transport, "rtx_recovered", 0)
            gaveups += getattr(transport, "inbound_gaveups", 0)
            out_gaveups += getattr(transport, "outbound_gaveups", 0)
        return cls(grants=grants, resends=resends, busys=busys,
                   grant_ticks=ticks, rtx_data=rtx,
                   rtx_recovered=recovered, give_ups=gaveups,
                   outbound_give_ups=out_gaveups)

    @property
    def total(self) -> int:
        """All control packets put on the wire (ticks are not packets,
        and retransmitted DATA is data)."""
        return self.grants + self.resends + self.busys

    def to_payload(self) -> dict:
        return {
            "grants": self.grants,
            "resends": self.resends,
            "busys": self.busys,
            "grant_ticks": self.grant_ticks,
            "rtx_data": self.rtx_data,
            "rtx_recovered": self.rtx_recovered,
            "give_ups": self.give_ups,
            "outbound_give_ups": self.outbound_give_ups,
        }

    @classmethod
    def from_payload(cls, payload: dict | None) -> "ControlTraffic":
        if not payload:
            return cls()
        return cls(
            grants=payload.get("grants", 0),
            resends=payload.get("resends", 0),
            busys=payload.get("busys", 0),
            grant_ticks=payload.get("grant_ticks", 0),
            rtx_data=payload.get("rtx_data", 0),
            rtx_recovered=payload.get("rtx_recovered", 0),
            give_ups=payload.get("give_ups", 0),
            outbound_give_ups=payload.get("outbound_give_ups", 0),
        )


@dataclass(frozen=True)
class FabricHealth:
    """Fabric-side fault accounting for one run (core/faults.py).

    Per-layer injected-loss drops come from each switch's
    ``injected_drops``; ``fault_drops`` counts packets that reached a
    dead switch, ``black_holes`` packets whose route had no live egress
    after a failure, ``reroutes`` spray sets rewritten by fault
    application, and ``faults_applied`` schedule entries executed.  All
    zero on a clean fabric (and on the canonical builders).
    """

    drops_tor: int = 0
    drops_aggr: int = 0
    drops_core: int = 0
    fault_drops: int = 0
    black_holes: int = 0
    reroutes: int = 0
    faults_applied: int = 0

    @classmethod
    def collect(cls, net) -> "FabricHealth":
        """Read the drop/reroute counters off a built network."""
        per = {"tor": 0, "aggr": 0, "core": 0}
        fault_drops = black_holes = 0
        switches = getattr(net, "all_switches", None)
        for switch in switches() if switches is not None else ():
            if switch.level in per:
                per[switch.level] += switch.injected_drops
            fault_drops += switch.fault_drops
            black_holes += switch.routed_drops
        injector = getattr(net, "fault_injector", None)
        return cls(
            drops_tor=per["tor"], drops_aggr=per["aggr"],
            drops_core=per["core"], fault_drops=fault_drops,
            black_holes=black_holes,
            reroutes=getattr(net, "reroutes", 0),
            faults_applied=injector.applied if injector is not None else 0,
        )

    @property
    def total_drops(self) -> int:
        """Every packet the fabric destroyed, for any reason."""
        return (self.drops_tor + self.drops_aggr + self.drops_core
                + self.fault_drops + self.black_holes)

    def any(self) -> bool:
        return bool(self.total_drops or self.reroutes or self.faults_applied)

    def to_payload(self) -> dict:
        return {
            "drops_tor": self.drops_tor,
            "drops_aggr": self.drops_aggr,
            "drops_core": self.drops_core,
            "fault_drops": self.fault_drops,
            "black_holes": self.black_holes,
            "reroutes": self.reroutes,
            "faults_applied": self.faults_applied,
        }

    @classmethod
    def from_payload(cls, payload: dict | None) -> "FabricHealth":
        if not payload:
            return cls()
        return cls(
            drops_tor=payload.get("drops_tor", 0),
            drops_aggr=payload.get("drops_aggr", 0),
            drops_core=payload.get("drops_core", 0),
            fault_drops=payload.get("fault_drops", 0),
            black_holes=payload.get("black_holes", 0),
            reroutes=payload.get("reroutes", 0),
            faults_applied=payload.get("faults_applied", 0),
        )
