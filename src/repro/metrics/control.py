"""Control-traffic accounting: how many control events a run emitted.

Homa's receiver paces senders with GRANT packets, and the cost of that
control traffic — one GRANT per scheduled data packet in the paper's
simulator — is the dominant per-packet overhead at high load (it is the
motivation for the batched grant pacer, ``HomaConfig.grant_batch_ns``).
This collector sums the per-transport counters after a run so the
reduction is measurable: ``benchmarks/bench_perf_hotpaths.py
--grant-batching`` records the legacy-vs-batched grant counts in
``BENCH_hotpaths.json``.

Counters are read with ``getattr(..., 0)`` so non-Homa transports (and
future protocols without a given counter) participate with zeros.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class ControlTraffic:
    """Control-event totals summed over every transport in a run."""

    #: GRANT packets emitted by receivers
    grants: int = 0
    #: RESEND packets emitted (receiver timeouts and client probes)
    resends: int = 0
    #: BUSY packets emitted by senders
    busys: int = 0
    #: grant-pacer timer firings (0 in legacy per-packet mode)
    grant_ticks: int = 0

    @classmethod
    def collect(cls, transports: Iterable) -> "ControlTraffic":
        """Sum the control counters of every transport."""
        grants = resends = busys = ticks = 0
        for transport in transports:
            grants += getattr(transport, "grants_sent", 0)
            resends += getattr(transport, "resends_sent", 0)
            busys += getattr(transport, "busys_sent", 0)
            ticks += getattr(transport, "grant_ticks", 0)
        return cls(grants=grants, resends=resends, busys=busys, grant_ticks=ticks)

    @property
    def total(self) -> int:
        """All control packets put on the wire (ticks are not packets)."""
        return self.grants + self.resends + self.busys

    def to_payload(self) -> dict:
        return {
            "grants": self.grants,
            "resends": self.resends,
            "busys": self.busys,
            "grant_ticks": self.grant_ticks,
        }

    @classmethod
    def from_payload(cls, payload: dict | None) -> "ControlTraffic":
        if not payload:
            return cls()
        return cls(
            grants=payload.get("grants", 0),
            resends=payload.get("resends", 0),
            busys=payload.get("busys", 0),
            grant_ticks=payload.get("grant_ticks", 0),
        )
