"""Per-priority network usage (Figure 21).

Measures the bytes transmitted at each priority level on the receiver
downlinks — where Homa's priorities act — as a fraction of the total
available downlink bandwidth.
"""

from __future__ import annotations

from repro.core.packet import N_PRIORITIES
from repro.core.port import PortProbe
from repro.core.topology import Network
from repro.core.units import bytes_per_sec
from repro.metrics.probes import attach_probe


class _PrioMeter(PortProbe):
    def __init__(self) -> None:
        self.bytes_at = [0] * N_PRIORITIES

    def on_tx_done(self, now_ps, pkt) -> None:
        self.bytes_at[pkt.prio] += pkt.wire


class PriorityUsage:
    """Aggregates per-priority downlink bytes across all receivers.

    Like ThroughputMeter, fractions are measured over the generation
    window when the runner schedules a ``snapshot()`` at its end.
    """

    def __init__(self, net: Network) -> None:
        self.net = net
        self.start_ps = net.sim.now
        self.meters = []
        self._snap_ps: int | None = None
        self._snap_totals: list[int] | None = None
        for port in net.tor_down_ports:
            meter = _PrioMeter()
            self.meters.append(meter)
            attach_probe(port, meter)

    def _totals(self) -> list[int]:
        totals = [0] * N_PRIORITIES
        for meter in self.meters:
            for prio in range(N_PRIORITIES):
                totals[prio] += meter.bytes_at[prio]
        return totals

    def snapshot(self) -> None:
        """Freeze counters; call when traffic generation ends."""
        self._snap_ps = self.net.sim.now
        self._snap_totals = self._totals()

    def fractions(self) -> list[float]:
        """Fraction of downlink capacity carried at each priority level
        (index 0 = lowest priority), as in Figure 21's bars."""
        if self._snap_totals is not None:
            end, totals = self._snap_ps, self._snap_totals
        else:
            end, totals = self.net.sim.now, self._totals()
        duration_s = (end - self.start_ps) / 1e12
        capacity = (len(self.meters) * bytes_per_sec(self.net.cfg.host_gbps)
                    * duration_s)
        if capacity <= 0:
            return [0.0] * N_PRIORITIES
        return [t / capacity for t in totals]
