"""Tail-delay decomposition (Figure 14).

Why is slowdown at the 99th percentile above 1.0?  The paper attributes
short-message tail delay to two sources:

* **preemption lag** — a short message's packet arrives at a link while
  it is busy serializing a lower-priority (longer-message) packet, and
  current Ethernet cannot preempt mid-packet;
* **queueing delay** — waiting behind packets of equal or higher
  priority.

Switch ports attribute waits per packet when ``trace_delays`` is on.
The sender's NIC (pull model) is attributed here: when a message is
submitted while the uplink is mid-packet, the residual serialization
time counts against the new message, classified by the in-flight
packet's priority relative to the newcomer's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.packet import PacketType
from repro.core.topology import Network


@dataclass
class MessageDelays:
    size: int
    q_wait_ps: int
    p_wait_ps: int


class DelayDecomposition:
    """Collects per-message queueing delay and preemption lag."""

    def __init__(self, net: Network) -> None:
        self.net = net
        for port in net.all_switch_ports():
            port.trace_delays = True
        self._accumulating: dict[int, list[int]] = {}  # key -> [q, p, size]
        self.records: list[MessageDelays] = []

    # -- sender side ---------------------------------------------------

    def on_submit(self, host, msg_key: int, length: int, prio: int) -> None:
        """Called when a message is handed to a transport; charges the
        residual of any in-flight packet on the host uplink."""
        entry = self._accumulating.setdefault(msg_key, [0, 0, length])
        port = host.egress
        if port.busy and port.cur_pkt is not None:
            residual = port.cur_end_ps - host.sim.now
            if port.cur_pkt.kind == PacketType.DATA and port.cur_pkt.prio < prio:
                entry[1] += residual
            else:
                entry[0] += residual

    # -- receiver side ---------------------------------------------------

    def on_data_packet(self, pkt) -> None:
        """Called for every DATA packet delivered to a host."""
        entry = self._accumulating.setdefault(
            pkt.msg_key, [0, 0, pkt.total_length])
        entry[0] += pkt.q_wait
        entry[1] += pkt.p_wait

    def on_complete(self, msg_key: int) -> None:
        entry = self._accumulating.pop(msg_key, None)
        if entry is not None:
            self.records.append(MessageDelays(
                size=entry[2], q_wait_ps=entry[0], p_wait_ps=entry[1]))

    # -- reporting -------------------------------------------------------

    def tail_breakdown(
        self,
        *,
        size_percentile: float = 20.0,
        tail_lo: float = 98.0,
        tail_hi: float = 99.9,
    ) -> tuple[float, float]:
        """(queueing_us, preemption_us) averaged over short messages with
        total delay near the 99th percentile, as in Figure 14 ("for
        W1-W4 the bar considers the smallest 20% of all messages")."""
        if not self.records:
            return (0.0, 0.0)
        sizes = np.array([r.size for r in self.records])
        cutoff = np.percentile(sizes, size_percentile)
        short = [r for r in self.records if r.size <= cutoff]
        if not short:
            return (0.0, 0.0)
        totals = np.array([r.q_wait_ps + r.p_wait_ps for r in short])
        lo = np.percentile(totals, tail_lo)
        hi = np.percentile(totals, tail_hi)
        window = [r for r, t in zip(short, totals) if lo <= t <= hi]
        if not window:
            window = short
        q_us = sum(r.q_wait_ps for r in window) / len(window) / 1e6
        p_us = sum(r.p_wait_ps for r in window) / len(window) / 1e6
        return (q_us, p_us)
