"""Bandwidth accounting: utilization (Figure 15) and wasted receiver
downlink bandwidth (Figure 16).

Wasted bandwidth follows the paper's definition: "the average fraction
of time across all receivers that a receiver's link is idle, yet the
receiver withheld grants (because of overcommitment limits) that might
have caused the bandwidth to be used".  We intersect two independently
observed signals per receiver: the TOR->host port's busy/idle state and
the transport's withheld flag.
"""

from __future__ import annotations

from repro.core.packet import PacketType
from repro.core.port import PortProbe
from repro.core.topology import Network
from repro.core.units import bytes_per_sec
from repro.metrics.probes import attach_probe


class _DownlinkMeter(PortProbe):
    """Wire/app byte counters for one receiver downlink."""

    def __init__(self) -> None:
        self.wire_bytes = 0
        self.app_bytes = 0

    def on_tx_done(self, now_ps, pkt) -> None:
        self.wire_bytes += pkt.wire
        if pkt.kind == PacketType.DATA and not pkt.retx:
            self.app_bytes += pkt.payload


class ThroughputMeter:
    """Aggregate goodput at the receiver downlinks (Figure 15 bars).

    Utilization is measured over the traffic-generation window only: a
    snapshot is taken when generation stops (``snapshot()``, scheduled
    by the runner), so the drain period does not dilute the fractions.
    """

    def __init__(self, net: Network) -> None:
        self.net = net
        self.start_ps = net.sim.now
        self.meters = []
        self._snap_ps: int | None = None
        self._snap_wire = 0
        self._snap_app = 0
        for port in net.tor_down_ports:
            meter = _DownlinkMeter()
            self.meters.append(meter)
            attach_probe(port, meter)

    def snapshot(self) -> None:
        """Freeze counters; call when traffic generation ends."""
        self._snap_ps = self.net.sim.now
        self._snap_wire = sum(m.wire_bytes for m in self.meters)
        self._snap_app = sum(m.app_bytes for m in self.meters)

    def _window(self) -> tuple[float, int, int]:
        if self._snap_ps is not None:
            end, wire, app = (self._snap_ps, self._snap_wire, self._snap_app)
        else:
            end = self.net.sim.now
            wire = sum(m.wire_bytes for m in self.meters)
            app = sum(m.app_bytes for m in self.meters)
        duration_s = (end - self.start_ps) / 1e12
        capacity = (len(self.meters) * bytes_per_sec(self.net.cfg.host_gbps)
                    * duration_s)
        return capacity, wire, app

    def total_utilization(self) -> float:
        """Wire bytes (headers + control + data) over capacity."""
        capacity, wire, _ = self._window()
        return wire / capacity if capacity > 0 else 0.0

    def app_utilization(self) -> float:
        """First-copy application payload bytes over capacity."""
        capacity, _, app = self._window()
        return app / capacity if capacity > 0 else 0.0


class _IdleWithheldAccount(PortProbe):
    """Integrates time where the downlink is idle AND grants are withheld."""

    def __init__(self, start_ps: int) -> None:
        self.busy = False
        self.withheld = False
        self.last_ps = start_ps
        self.wasted_ps = 0

    def _accumulate(self, now_ps: int) -> None:
        if not self.busy and self.withheld:
            self.wasted_ps += now_ps - self.last_ps
        self.last_ps = now_ps

    def on_busy_change(self, now_ps: int, busy: bool) -> None:
        self._accumulate(now_ps)
        self.busy = busy

    def set_withheld(self, now_ps: int, withheld: bool) -> None:
        self._accumulate(now_ps)
        self.withheld = withheld


class WastedBandwidthTracker:
    """Figure 16: fraction of receiver downlink time wasted by
    overcommitment limits, averaged across receivers."""

    def __init__(self, net: Network, transports) -> None:
        self.net = net
        self.start_ps = net.sim.now
        self._snap_ps: int | None = None
        self.accounts: dict[int, _IdleWithheldAccount] = {}
        for host, port in zip(net.hosts, net.tor_down_ports):
            account = _IdleWithheldAccount(self.start_ps)
            self.accounts[host.hid] = account
            attach_probe(port, account)
        for transport in transports:
            if hasattr(transport, "withheld_observer"):
                transport.withheld_observer = self._on_withheld

    def _on_withheld(self, hid: int, withheld: bool) -> None:
        self.accounts[hid].set_withheld(self.net.sim.now, withheld)

    def snapshot(self) -> None:
        """Freeze the measurement window at generation end."""
        now = self.net.sim.now
        for account in self.accounts.values():
            account._accumulate(now)
        self._snap_ps = now

    def wasted_fraction(self) -> float:
        end = getattr(self, "_snap_ps", None)
        if end is None:
            end = self.net.sim.now
            for account in self.accounts.values():
                account._accumulate(end)
        duration = end - self.start_ps
        if duration <= 0:
            return 0.0
        total = sum(a.wasted_ps for a in self.accounts.values())
        return total / (duration * len(self.accounts))
