"""Slowdown measurement (the paper's primary metric).

Slowdown = actual completion time / best possible time for a message of
that size on an unloaded network (section 5.1).  Reports are bucketed by
message-count deciles, matching the x-axes of Figures 8/9/12/13 ("the
axis is linear in total number of messages, with ticks corresponding to
10% of all messages").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.core.topology import Network


@dataclass(frozen=True)
class BucketStats:
    """Slowdown statistics for one message-size bucket."""

    lo: int          # exclusive lower bound (bytes)
    hi: int          # inclusive upper bound (bytes)
    count: int
    p50: float
    p99: float
    mean: float

    def row(self) -> str:
        return (f"{self.lo + 1:>9}-{self.hi:<9} {self.count:>8} "
                f"{self.p50:>8.2f} {self.p99:>9.2f} {self.mean:>8.2f}")


class SlowdownTracker:
    """Records per-message slowdowns and produces bucketed reports.

    A tracker rehydrated from :meth:`from_payload` has ``net=None``:
    it can report (``series``/``overall``/``bucket_report``) but not
    record, which is exactly what campaign workers ship back to the
    parent process.
    """

    def __init__(self, net: Network | None = None, *,
                 warmup_ps: int = 0) -> None:
        self.net = net
        self.warmup_ps = warmup_ps
        self.sizes: list[int] = []
        self.slowdowns: list[float] = []

    def to_payload(self) -> dict:
        """Compact JSON-safe form (floats survive exactly via repr)."""
        return {"warmup_ps": self.warmup_ps,
                "sizes": self.sizes,
                "slowdowns": self.slowdowns}

    @classmethod
    def from_payload(cls, payload: dict) -> "SlowdownTracker":
        tracker = cls(None, warmup_ps=payload["warmup_ps"])
        tracker.sizes = [int(s) for s in payload["sizes"]]
        tracker.slowdowns = [float(s) for s in payload["slowdowns"]]
        return tracker

    def record_oneway(self, src: int, dst: int, size: int,
                      created_ps: int, completed_ps: int) -> None:
        """Record a one-way message (the section 5.2 experiments)."""
        if created_ps < self.warmup_ps:
            return
        oracle = self.net.min_oneway_between(src, dst, size)
        self._push(size, (completed_ps - created_ps) / oracle)

    def record_rpc(self, src: int, dst: int, request: int, response: int,
                   created_ps: int, completed_ps: int) -> None:
        """Record an echo RPC round trip (the section 5.1 experiments).
        Slowdown is bucketed by the echo payload size, as in Figure 8."""
        if created_ps < self.warmup_ps:
            return
        oracle = self.net.min_rpc_between(src, dst, request, response)
        self._push(max(request, response),
                   (completed_ps - created_ps) / oracle)

    def _push(self, size: int, slowdown: float) -> None:
        self.sizes.append(size)
        self.slowdowns.append(slowdown)

    @property
    def count(self) -> int:
        return len(self.sizes)

    def overall(self, percentile: float) -> float:
        """Percentile of slowdown across all recorded messages."""
        if not self.slowdowns:
            raise ValueError("no messages recorded")
        return float(np.percentile(self.slowdowns, percentile))

    def bucket_report(self, edges: list[int]) -> list[BucketStats]:
        """Stats per (edges[i], edges[i+1]] size bucket.

        ``edges`` typically comes from ``Workload.bucket_edges()``:
        [0, d10, d20, ..., d90, max].
        """
        if len(edges) < 2 or edges != sorted(edges):
            raise ValueError(f"bad bucket edges: {edges}")
        sizes = np.asarray(self.sizes)
        slowdowns = np.asarray(self.slowdowns)
        report = []
        for i in range(len(edges) - 1):
            lo, hi = edges[i], edges[i + 1]
            mask = (sizes > lo) & (sizes <= hi)
            selected = slowdowns[mask]
            if selected.size:
                report.append(BucketStats(
                    lo=lo, hi=hi, count=int(selected.size),
                    p50=float(np.percentile(selected, 50)),
                    p99=float(np.percentile(selected, 99)),
                    mean=float(selected.mean()),
                ))
            else:
                report.append(BucketStats(lo=lo, hi=hi, count=0,
                                           p50=float("nan"),
                                           p99=float("nan"),
                                           mean=float("nan")))
        return report

    def series(self, edges: list[int], percentile: float) -> list[float]:
        """One value per bucket: the figure's y series."""
        report = self.bucket_report(edges)
        key = "p99" if percentile == 99 else "p50"
        return [getattr(b, key) for b in report]


def bucket_index(edges: list[int], size: int) -> int:
    """Bucket index of a size given ascending edges (first edge exclusive)."""
    return max(0, bisect.bisect_left(edges, size, lo=1) - 1)
